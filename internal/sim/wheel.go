package sim

import "math/bits"

// Timing-wheel geometry: 7 levels of 1024 slots, 1 ns tick. Level l
// holds timers whose delta from the cursor is in [2^(10l), 2^(10(l+1)))
// — level 0 spans ~1 µs, level 1 ~1 ms, level 2 ~1 s, and level 6
// reaches 2^63-1, so the hierarchy covers the entire non-negative
// int64 Time range and no unsorted overflow list is needed.
const (
	wheelBits   = 10
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 7
)

// wheelLevel is one ring: 1024 intrusive doubly-linked bucket lists
// plus an occupancy bitmap for O(1) next-occupied-slot scans. Lists
// are tail-appended, which keeps every equal-at run in seq order (see
// the ordering note on wheelScheduler).
type wheelLevel struct {
	head   [wheelSlots]*Timer
	tail   [wheelSlots]*Timer
	bitmap [wheelSlots / 64]uint64
	count  int
}

// nextSlot returns the first occupied slot index ≥ from, or -1.
func (lv *wheelLevel) nextSlot(from int) int {
	if from >= wheelSlots {
		return -1
	}
	wi := from >> 6
	word := lv.bitmap[wi] &^ (uint64(1)<<uint(from&63) - 1)
	for {
		if word != 0 {
			return wi<<6 + bits.TrailingZeros64(word)
		}
		wi++
		if wi >= len(lv.bitmap) {
			return -1
		}
		word = lv.bitmap[wi]
	}
}

// wheelScheduler is the hierarchical timing wheel behind BackendWheel.
//
// Placement: a timer at absolute time `at` lives at the level selected
// by its delta from the cursor, in the slot given by the corresponding
// 10-bit field of `at` itself (absolute addressing, so a slot index
// never needs recomputation as the cursor moves). Buckets are intrusive
// doubly-linked lists threaded through the Timer's wnext/wprev fields,
// so push, remove, and cascade are all allocation-free.
//
// Cursor invariant: cur is 1024-aligned and cur ≤ every pending at.
// findMin is strictly non-mutating; the cursor advances only in popMin,
// to the level-0 window of the verified global minimum. Because Step
// sets now to the popped time and schedule rejects at < now, a push
// below the cursor is impossible (enforced by a defensive panic).
//
// Ordering: buckets are tail-appended, and every path that inserts
// equal-at timers into one bucket does so in increasing seq order —
// direct pushes carry the globally monotonic seq counter, and a
// cascade appends a source bucket's (inductively ordered) equal-at
// runs as contiguous blocks whose seqs all precede any later direct
// push (a same-at timer scheduled before the cascade would have sat
// at a higher level, not the destination). A level-0 slot covers
// exactly one tick (the cursor is 1024-aligned, so its level-0 slot
// is 0 and the level's residency bound keeps each slot single-
// valued), which makes a level-0 bucket's head its (at, seq) minimum
// with no scan. Higher-level candidate buckets are resolved by an
// (at, seq) scan, and across levels candidates are compared by the
// same key, so the strict (at, seq) total order — including ties
// created before or after any cascade — matches the heap exactly.
//
// The min memo is maintained incrementally: a push replaces it only
// when strictly smaller, a remove invalidates it only when it removes
// the cached timer itself, and cascades (which relocate but never
// add or drop timers) leave it untouched. Steady-state arm/cancel
// churn against a stable minimum — the NAV/respTimeout pattern that
// dominates large networks — therefore never forces a rescan; only
// popping the minimum does, once per event.
type wheelScheduler struct {
	cur      Time // 1024-aligned cursor, ≤ every pending at
	n        int
	minCache *Timer // current (at, seq) minimum; nil when stale
	levels   [wheelLevels]wheelLevel
}

func newWheelScheduler() *wheelScheduler { return &wheelScheduler{} }

func (w *wheelScheduler) len() int { return w.n }

func (w *wheelScheduler) min() Time { return w.findMin().at }

// levelFor maps a delta from the cursor to its wheel level.
func levelFor(delta int64) int {
	if delta < wheelSlots {
		return 0
	}
	return (bits.Len64(uint64(delta)) - 1) / wheelBits
}

// place appends t to the bucket selected by its delta from the current
// cursor (tail insertion preserves the equal-at seq order). Callers
// guarantee t.at >= w.cur.
func (w *wheelScheduler) place(t *Timer) {
	l := levelFor(int64(t.at - w.cur))
	slot := int(uint64(t.at)>>(uint(l)*wheelBits)) & wheelMask
	lv := &w.levels[l]
	t.wlevel = int8(l)
	t.wslot = int16(slot)
	t.wnext = nil
	t.wprev = lv.tail[slot]
	if t.wprev != nil {
		t.wprev.wnext = t
	} else {
		lv.head[slot] = t
		lv.bitmap[slot>>6] |= 1 << uint(slot&63)
	}
	lv.tail[slot] = t
	lv.count++
}

func (w *wheelScheduler) push(t *Timer) {
	if t.at < w.cur {
		// Unreachable: schedule rejects at < now and now >= cur always.
		panic("sim: wheel push below cursor")
	}
	w.place(t)
	t.index = 0
	w.n++
	if mc := w.minCache; mc != nil &&
		(t.at < mc.at || (t.at == mc.at && t.seq < mc.seq)) {
		w.minCache = t
	}
}

func (w *wheelScheduler) remove(t *Timer) {
	lv := &w.levels[t.wlevel]
	if t.wprev != nil {
		t.wprev.wnext = t.wnext
	} else {
		lv.head[t.wslot] = t.wnext
	}
	if t.wnext != nil {
		t.wnext.wprev = t.wprev
	} else {
		lv.tail[t.wslot] = t.wprev
	}
	if lv.head[t.wslot] == nil {
		lv.bitmap[t.wslot>>6] &^= 1 << uint(t.wslot&63)
	}
	t.wnext = nil
	t.wprev = nil
	lv.count--
	w.n--
	t.index = -1
	if t == w.minCache {
		w.minCache = nil
	}
}

// bucketMin scans one bucket list for its (at, seq) minimum — needed
// only at levels ≥ 1, where a slot mixes distinct at values. Equal-at
// runs are already in seq order (tail appends), so the strict `<`
// keeps the first — lowest-seq — element of the winning run.
func bucketMin(t *Timer) *Timer {
	best := t
	for t = t.wnext; t != nil; t = t.wnext {
		if t.at < best.at {
			best = t
		}
	}
	return best
}

// findMin returns the pending timer with the smallest (at, seq) key
// without mutating any wheel state. Callers guarantee w.n > 0.
//
// Per level, slots split cleanly around the cursor's own slot index cl:
// slots > cl hold "forward" timers (same level-(l+1) window as the
// cursor), slots ≤ cl hold "wrapped" timers (the next window) — the
// level's residency bound delta < 2^(10(l+1)) permits nothing further
// out. The first occupied forward slot's bucket therefore holds the
// level minimum, and it is provably smaller than every timer at any
// higher level (which all lie at or beyond the end of the cursor's
// level-(l+1) window), so the scan stops at the first forward hit.
// Wrapped-only levels contribute a candidate (their first occupied slot
// from 0) and the scan continues upward.
func (w *wheelScheduler) findMin() *Timer {
	if w.minCache != nil {
		return w.minCache
	}
	var best *Timer
	for l := 0; l < wheelLevels; l++ {
		lv := &w.levels[l]
		if lv.count == 0 {
			continue
		}
		if l == 0 {
			// The cursor's level-0 slot is 0 (cur is 1024-aligned), so
			// every slot is forward, each covers exactly one tick, and
			// the first occupied slot's head — lowest seq by tail
			// append — is the level minimum outright.
			if sl := lv.nextSlot(0); sl >= 0 {
				best = lv.head[sl]
				break
			}
			continue
		}
		// The cursor's own slot holds no forward timers at levels ≥ 1
		// (a same-window timer there would have delta < 2^(10l) and
		// live lower).
		from := int(uint64(w.cur)>>(uint(l)*wheelBits))&wheelMask + 1
		if sl := lv.nextSlot(from); sl >= 0 {
			if c := bucketMin(lv.head[sl]); best == nil || c.at < best.at ||
				(c.at == best.at && c.seq < best.seq) {
				best = c
			}
			break
		}
		if sl := lv.nextSlot(0); sl >= 0 {
			if c := bucketMin(lv.head[sl]); best == nil || c.at < best.at ||
				(c.at == best.at && c.seq < best.seq) {
				best = c
			}
		}
	}
	w.minCache = best
	return best
}

// advanceTo moves the cursor to base (1024-aligned, ≤ every pending
// at) and cascades: at each level whose cursor slot changed, the slot
// now covering base is drained and its timers re-place by their — now
// smaller — delta, landing in finer levels. Processing levels top-down
// lets a timer cascade through several levels in one pass.
func (w *wheelScheduler) advanceTo(base Time) {
	old := w.cur
	w.cur = base
	for l := wheelLevels - 1; l >= 1; l-- {
		lv := &w.levels[l]
		if lv.count == 0 {
			continue
		}
		sh := uint(l) * wheelBits
		if uint64(old)>>sh == uint64(base)>>sh {
			continue
		}
		slot := int(uint64(base)>>sh) & wheelMask
		t := lv.head[slot]
		if t == nil {
			continue
		}
		lv.head[slot] = nil
		lv.tail[slot] = nil
		lv.bitmap[slot>>6] &^= 1 << uint(slot&63)
		for t != nil {
			next := t.wnext
			lv.count--
			w.place(t)
			t = next
		}
	}
}

func (w *wheelScheduler) popMin() *Timer {
	t := w.findMin()
	if base := t.at &^ Time(wheelMask); base > w.cur {
		w.advanceTo(base)
	}
	w.remove(t)
	return t
}
