package stats

import (
	"math"
	"testing"

	"tcphack/internal/sim"
)

func TestNoRetryFraction(t *testing.T) {
	var m MAC
	if m.NoRetryFraction() != 0 {
		t.Error("empty counters should give 0")
	}
	m.DeliveredFirstTry = 87
	m.DeliveredRetried = 13
	if got := m.NoRetryFraction(); math.Abs(got-0.87) > 1e-12 {
		t.Errorf("fraction = %v, want 0.87", got)
	}
}

func TestTimeBreakdownAdd(t *testing.T) {
	a := TimeBreakdown{TCPAckAir: 1, ROHCAir: 2, ChannelWait: 3, LLAckOverhead: 4}
	b := TimeBreakdown{TCPAckAir: 10, ROHCAir: 20, ChannelWait: 30, LLAckOverhead: 40}
	a.Add(b)
	if a.TCPAckAir != 11 || a.ROHCAir != 22 || a.ChannelWait != 33 || a.LLAckOverhead != 44 {
		t.Errorf("sum = %+v", a)
	}
	if a.String() == "" {
		t.Error("empty string")
	}
}

func TestAckAccounting(t *testing.T) {
	var a AckAccounting
	if a.CompressionRatio() != 0 {
		t.Error("ratio with no compressed acks should be 0")
	}
	// Paper's Table 2: 9050 compressed ACKs, 39478 bytes on air, from
	// ~52-byte originals → ratio ≈ 12.
	a.CompressedAcks = 9050
	a.CompressedBytes = 39478
	a.UncompressedOf = 9050 * 52
	if r := a.CompressionRatio(); r < 11 || r > 13 {
		t.Errorf("ratio = %.1f, want ≈12", r)
	}
}

func TestGoodputWindows(t *testing.T) {
	var g Goodput
	sec := sim.Second
	g.Add(1*sec, 1_000_000)
	g.MarkWindow(1 * sec)
	g.Add(2*sec, 1_000_000)
	g.Add(3*sec, 1_000_000)
	// Window covers 2 MB over 2 s = 8 Mbps.
	if got := g.WindowMbps(3 * sec); math.Abs(got-8) > 1e-9 {
		t.Errorf("window goodput = %v, want 8", got)
	}
	// Overall: 3 MB over 3 s = 8 Mbps.
	if got := g.Mbps(3 * sec); math.Abs(got-8) > 1e-9 {
		t.Errorf("total goodput = %v, want 8", got)
	}
	if g.Total() != 3_000_000 {
		t.Errorf("total = %d", g.Total())
	}
	if g.LastDelivery() != 3*sec {
		t.Errorf("last delivery = %v", g.LastDelivery())
	}
	// Degenerate windows.
	if g.WindowMbps(1*sec) != 0 {
		t.Error("zero-length window should be 0")
	}
	var empty Goodput
	if empty.Mbps(0) != 0 {
		t.Error("no time elapsed should be 0")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Error("empty summary not zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Sample stddev of that classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-9 {
		t.Errorf("stddev = %v, want %v", s.StdDev(), want)
	}
	var one Summary
	one.Observe(3)
	if one.StdDev() != 0 {
		t.Error("single observation stddev should be 0")
	}
}
