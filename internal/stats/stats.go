// Package stats collects the measurements the paper's evaluation
// reports: per-station MAC counters (Table 1's retry percentages),
// ACK-compression counters (Table 2), per-cause time accounting for
// TCP ACK delivery (Table 3), and goodput meters with steady-state
// measurement windows (Figures 9–12).
package stats

import (
	"fmt"
	"math"

	"tcphack/internal/sim"
)

// MAC aggregates one station's MAC-layer counters.
type MAC struct {
	// PPDU-level.
	FramesSent    uint64 // data PPDUs transmitted (incl. retransmissions)
	AcksSent      uint64
	BlockAcksSent uint64
	BARsSent      uint64
	AckTimeouts   uint64

	// MPDU-level. Delivered MPDUs are classified by how many
	// transmission attempts they needed — Table 1's statistic.
	MPDUsSent         uint64 // MPDU transmissions (incl. retransmissions)
	MPDUsDelivered    uint64 // MPDUs confirmed via (Block)ACK
	DeliveredFirstTry uint64
	DeliveredRetried  uint64
	Retries           uint64 // individual MPDU retransmissions
	Expired           uint64 // MPDUs dropped at the retry limit
	QueueDrops        uint64 // tail drops at the transmit queue

	// HACK piggybacking at this station.
	HackPayloadsSent  uint64 // LL ACKs that carried a compressed frame
	HackBytesSent     uint64 // compressed bytes appended to LL ACKs
	HackPayloadsRecvd uint64
}

// NoRetryFraction returns the fraction of delivered MPDUs that needed
// no retries (Table 1, "no retries" row).
func (m *MAC) NoRetryFraction() float64 {
	total := m.DeliveredFirstTry + m.DeliveredRetried
	if total == 0 {
		return 0
	}
	return float64(m.DeliveredFirstTry) / float64(total)
}

// TimeBreakdown accounts where wall-clock time attributable to TCP ACK
// delivery goes — the four columns of the paper's Table 3.
type TimeBreakdown struct {
	// TCPAckAir is airtime spent transmitting native TCP ACK packets.
	TCPAckAir sim.Duration
	// ROHCAir is the extra airtime LL ACKs carry because of appended
	// compressed TCP ACK frames.
	ROHCAir sim.Duration
	// ChannelWait is time spent acquiring the medium (IFS + backoff +
	// deferrals) before transmitting frames that carry only TCP ACKs.
	ChannelWait sim.Duration
	// LLAckOverhead is time spent waiting for link-layer ACKs elicited
	// by native TCP ACK transmissions (SIFS + ACK airtime + any
	// receiver turnaround delay).
	LLAckOverhead sim.Duration
}

// Add accumulates o into t.
func (t *TimeBreakdown) Add(o TimeBreakdown) {
	t.TCPAckAir += o.TCPAckAir
	t.ROHCAir += o.ROHCAir
	t.ChannelWait += o.ChannelWait
	t.LLAckOverhead += o.LLAckOverhead
}

func (t TimeBreakdown) String() string {
	return fmt.Sprintf("tcpack=%.2fms rohc=%.2fms channel=%.2fms llack=%.2fms",
		t.TCPAckAir.Millis(), t.ROHCAir.Millis(), t.ChannelWait.Millis(), t.LLAckOverhead.Millis())
}

// AckAccounting counts TCP ACK packets by how they travelled — the
// paper's Table 2.
type AckAccounting struct {
	NativeAcks      uint64 // TCP ACKs sent as normal packets
	NativeAckBytes  uint64 // their wire bytes (IP+TCP headers)
	CompressedAcks  uint64 // TCP ACKs carried compressed in LL ACKs
	CompressedBytes uint64 // compressed bytes on the air
	UncompressedOf  uint64 // original sizes of the compressed ACKs
}

// CompressionRatio returns original/compressed size of the ACKs that
// travelled compressed (0 if none did).
func (a *AckAccounting) CompressionRatio() float64 {
	if a.CompressedBytes == 0 {
		return 0
	}
	return float64(a.UncompressedOf) / float64(a.CompressedBytes)
}

// Goodput measures application-level bytes delivered over time, with
// an optional steady-state window start so slow-start transients can
// be excluded (the paper's Figure 10 methodology).
type Goodput struct {
	total       uint64
	windowStart sim.Time
	atWindow    uint64
	lastAt      sim.Time
}

// Add records n application bytes delivered at time now.
func (g *Goodput) Add(now sim.Time, n int) {
	g.total += uint64(n)
	g.lastAt = now
}

// Total returns all bytes delivered.
func (g *Goodput) Total() uint64 { return g.total }

// LastDelivery returns the time of the most recent delivery.
func (g *Goodput) LastDelivery() sim.Time { return g.lastAt }

// MarkWindow begins the steady-state measurement window at now.
func (g *Goodput) MarkWindow(now sim.Time) {
	g.windowStart = now
	g.atWindow = g.total
}

// WindowMbps returns goodput in Mbps between MarkWindow and now.
func (g *Goodput) WindowMbps(now sim.Time) float64 {
	dt := (now - g.windowStart).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(g.total-g.atWindow) * 8 / dt / 1e6
}

// Mbps returns goodput in Mbps from time zero to now.
func (g *Goodput) Mbps(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(g.total) * 8 / now.Seconds() / 1e6
}

// Summary aggregates mean and standard deviation across repeated runs
// (the paper reports means over five runs with stddev error bars).
type Summary struct {
	n               int
	sum, sumSquares float64
}

// Observe adds one run's value.
func (s *Summary) Observe(v float64) {
	s.n++
	s.sum += v
	s.sumSquares += v * v
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// StdDev returns the sample standard deviation (0 for n < 2).
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	mean := s.Mean()
	variance := (s.sumSquares - float64(s.n)*mean*mean) / float64(s.n-1)
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}
