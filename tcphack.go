// Package tcphack is a from-scratch reproduction of "HACK:
// Hierarchical ACKs for Efficient Wireless Medium Utilization"
// (Salameh, Zhushi, Handley, Jamieson, Karp — USENIX ATC 2014):
// TCP/HACK carries compressed TCP acknowledgments inside 802.11
// link-layer acknowledgments, eliminating the medium acquisitions that
// TCP ACK packets otherwise require.
//
// The public API has two pillars:
//
// Scenario builder. A scenario is a NetworkConfig composed from
// functional options — a preset (With80211n, WithSoRa) refined by
// per-axis options — with a registry of named scenarios
// (Scenarios, LookupScenario) for CLIs and tests:
//
//	cfg := tcphack.NewScenario(tcphack.With80211n(),
//		tcphack.WithMode(tcphack.ModeMoreData), tcphack.WithClients(4))
//
// Campaign runner. A Campaign declares a base scenario and the axes to
// sweep — modes × client counts × seeds × rates × loss × SNR — and
// RunCampaign executes the grid on a bounded worker pool, one
// deterministic simulation per point, returning structured result rows
// (goodput, airtime, retries) with JSON/CSV emitters. Parallel and
// serial runs produce row-for-row identical results;
// RunCampaignContext adds cancellation and a progress callback for
// large grids:
//
//	results := tcphack.RunCampaign(tcphack.Campaign{
//		Name: "modes-vs-clients",
//		Base: tcphack.NewScenario(tcphack.With80211n()),
//		Axes: tcphack.CampaignAxes{
//			Modes:   []tcphack.Mode{tcphack.ModeOff, tcphack.ModeMoreData},
//			Clients: []int{1, 2, 4, 10},
//			Seeds:   tcphack.CampaignSeeds(1, 5),
//		},
//	})
//	results.WriteCSV(os.Stdout)
//
// Results layer. On top of the raw rows sits internal/results, the
// statistical subsystem the paper's evaluation methodology demands:
// group-by aggregation (count/mean/stddev/min/max/95% CI per metric),
// persisted baselines, and regression detection:
//
//	table := tcphack.NewResultsTable(results)
//	agg, _ := table.Aggregate("mode", "clients")
//	_ = tcphack.SaveBaselineFile("baseline.json", tcphack.NewBaseline(agg))
//	// ... later, after a fresh run of the same sweep:
//	base, _ := tcphack.LoadBaselineFile("baseline.json")
//	cmp, _ := tcphack.CompareBaseline(agg, base, nil)
//	cmp.Report(os.Stdout) // cmp.HasRegressions() gates CI
//
// Underneath sit the subsystems the options parameterize:
//
//   - a deterministic discrete-event 802.11a/n simulator
//     (internal/sim, internal/phy, internal/channel, internal/mac),
//     including per-station rate adaptation (WithRateAdapter: a fixed
//     rate, an ideal-SNR oracle, or a Minstrel-style learner);
//   - a standards-shaped TCP stack (internal/tcp) and real IPv4/TCP
//     wire formats (internal/packet);
//   - ROHC-style TCP ACK compression (internal/rohc);
//   - the HACK driver itself (internal/hack) with the MORE DATA,
//     opportunistic, and timer holding policies;
//   - network composition (internal/node), closed-form capacity models
//     (internal/analytical), and campaign-based runners for every
//     table and figure in the paper's evaluation (internal/experiments,
//     internal/campaign, internal/scenario).
//
// Single simulations remain a three-liner when a campaign is overkill:
//
//	n := tcphack.NewNetwork(tcphack.NewScenario(tcphack.With80211n()))
//	flow := n.StartDownload(0, 0, 0)
//	n.Run(2 * tcphack.Second)
//	flow.Goodput.MarkWindow(n.Sched.Now())
//	n.Run(8 * tcphack.Second)
//	fmt.Printf("%.1f Mbps\n", flow.Goodput.WindowMbps(n.Sched.Now()))
package tcphack

import (
	"context"
	"io"

	"tcphack/internal/analytical"
	"tcphack/internal/campaign"
	"tcphack/internal/channel"
	"tcphack/internal/experiments"
	"tcphack/internal/hack"
	"tcphack/internal/mac"
	"tcphack/internal/node"
	"tcphack/internal/phy"
	"tcphack/internal/results"
	"tcphack/internal/scenario"
	"tcphack/internal/sim"
	"tcphack/internal/trace"
)

// Re-exported core types.
type (
	// NetworkConfig parameterizes a simulated WLAN (see node.Config).
	NetworkConfig = node.Config
	// Network is an assembled simulation.
	Network = node.Network
	// Flow is one TCP transfer with measurement hooks.
	Flow = node.Flow
	// Mode selects the HACK ACK-holding policy.
	Mode = hack.Mode
	// Rate is an 802.11 PHY rate.
	Rate = phy.Rate
	// Duration is simulated time in nanoseconds.
	Duration = sim.Duration
	// Pos is a 2-D position in metres (client topology).
	Pos = channel.Pos
	// ExperimentOptions scales the paper-reproduction runners.
	ExperimentOptions = experiments.Options
	// Fig11Result carries Figure 11's per-SNR goodput curves and the
	// method that produced them (rate adapter or fixed-rate envelope).
	Fig11Result = experiments.Fig11Result
	// AnalyticalParams parameterizes the closed-form capacity models.
	AnalyticalParams = analytical.Params
)

// Scenario builder.
type (
	// ScenarioOption composes a NetworkConfig (see NewScenario).
	ScenarioOption = scenario.Option
	// ScenarioEntry is one named scenario from the registry.
	ScenarioEntry = scenario.Entry
)

// NewScenario builds a NetworkConfig from options; later options
// override earlier ones, so presets can be specialized freely.
func NewScenario(opts ...ScenarioOption) NetworkConfig { return scenario.New(opts...) }

// Scenario-builder options.
var (
	// With80211n applies the paper's §4.3 preset: 150 Mbps 802.11n,
	// A-MPDU aggregation, 24 Mbps LL ACKs, wired backhaul.
	With80211n = scenario.With80211n
	// WithSoRa applies the paper's §4.1 testbed preset: 802.11a @54,
	// AP-resident sender, SoRa's late link-layer ACKs.
	WithSoRa = scenario.WithSoRa
	// WithMode selects the HACK ACK-holding policy.
	WithMode = scenario.WithMode
	// WithClients sets the number of WiFi clients.
	WithClients = scenario.WithClients
	// WithSeed sets the RNG seed.
	WithSeed = scenario.WithSeed
	// WithRate sets the PHY data rate (LL ACK rate follows the 802.11
	// control-response rules).
	WithRate = scenario.WithRate
	// WithAckRate pins the link-layer ACK rate.
	WithAckRate = scenario.WithAckRate
	// WithRateAdapter selects per-station rate adaptation:
	// "fixed", "fixed:<rate>", "ideal", or "minstrel".
	WithRateAdapter = scenario.WithRateAdapter
	// WithUniformLoss applies a uniform per-frame loss probability.
	WithUniformLoss = scenario.WithUniformLoss
	// WithBurstyLoss layers a Gilbert-Elliott bursty loss process onto
	// the channel (forked per network, campaign-safe).
	WithBurstyLoss = scenario.WithBurstyLoss
	// WithSNR fixes the channel SNR in dB via the physical error model.
	WithSNR = scenario.WithSNR
	// WithTopology places client i at the returned position.
	WithTopology = scenario.WithTopology
	// WithGeometry installs a spatial PHY configuration on the medium
	// (per-pair path loss, per-receiver carrier sense, SINR capture);
	// nil restores the scalar collision-domain channel.
	WithGeometry = scenario.WithGeometry
	// WithPathLoss switches to the spatial PHY with the default
	// geometry (≈51.5 m sense/delivery range).
	WithPathLoss = scenario.WithPathLoss
	// WithCSThreshold sets the spatial PHY's energy-detect
	// carrier-sense threshold in dBm.
	WithCSThreshold = scenario.WithCSThreshold
	// WithPositions pins the AP and every client to explicit
	// coordinates (metres).
	WithPositions = scenario.WithPositions
	// WithBSSLayout replaces the single-BSS star with overlapping BSSs
	// contending on one medium.
	WithBSSLayout = scenario.WithBSSLayout
	// WithWire sets the server—AP wired backhaul.
	WithWire = scenario.WithWire
	// WithConfig overlays arbitrary NetworkConfig edits.
	WithConfig = scenario.WithConfig
)

// Scenarios lists the named scenarios in the registry, sorted by name.
func Scenarios() []ScenarioEntry { return scenario.All() }

// ScenarioNames lists registered scenario names, sorted.
func ScenarioNames() []string { return scenario.Names() }

// LookupScenario builds a named scenario's NetworkConfig, applying
// extra options on top (e.g. WithClients, WithSeed).
func LookupScenario(name string, extra ...ScenarioOption) (NetworkConfig, bool) {
	e, ok := scenario.Lookup(name)
	if !ok {
		return NetworkConfig{}, false
	}
	return e.Config(extra...), true
}

// RegisterScenario names a scenario built from opts so CLIs and tests
// can look it up; registering an existing name replaces it.
func RegisterScenario(name, desc string, opts ...ScenarioOption) {
	scenario.Register(name, desc, opts...)
}

// ScenarioWorkload returns the named scenario's traffic-workload kind
// ("upload", "mixed"; "" for the default download workload or an
// unknown name) — feed it to NamedCampaignWorkload to start the right
// flows.
func ScenarioWorkload(name string) string { return scenario.WorkloadOf(name) }

// Spatial PHY configuration (see the channel package).
type (
	// Geometry configures the spatial PHY: log-distance path loss,
	// per-receiver carrier sensing, SINR capture.
	Geometry = channel.Geometry
	// BSSSpec declares one BSS of a multi-BSS layout (WithBSSLayout).
	BSSSpec = node.BSSSpec
)

// DefaultGeometry returns the paper's indoor spatial PHY constants
// with an 802.11-style -82 dBm carrier-sense threshold.
func DefaultGeometry() *Geometry { return channel.DefaultGeometry() }

// DegenerateGeometry returns the spatial configuration that reproduces
// the scalar channel exactly regardless of positions — the oracle
// geometry for differential testing.
func DegenerateGeometry() *Geometry { return channel.DegenerateGeometry() }

// TopologyNames lists registered topology names, sorted — the
// vocabulary of the campaign topology axis.
func TopologyNames() []string { return scenario.TopologyNames() }

// TopologyOption returns a single scenario option applying the named
// topology, and whether the name is registered.
func TopologyOption(name string) (ScenarioOption, bool) { return scenario.TopologyOption(name) }

// RegisterTopology names a topology built from opts for the campaign
// topology axis; registering an existing name replaces it.
func RegisterTopology(name, desc string, opts ...ScenarioOption) {
	scenario.RegisterTopology(name, desc, opts...)
}

// RateStats is one rate's learned state in a Minstrel adapter
// (see Network.APMinstrelStats / Network.ClientMinstrelStats and
// hacksim's -rate-stats flag).
type RateStats = mac.RateStats

// Campaign runner.
type (
	// Campaign declares a sweep: a base scenario × axes, executed in
	// parallel on a bounded worker pool.
	Campaign = campaign.Spec
	// CampaignAxes are the sweep dimensions.
	CampaignAxes = campaign.Axes
	// CampaignPoint is one cell of the sweep grid.
	CampaignPoint = campaign.Point
	// CampaignResult is one grid point's measurements.
	CampaignResult = campaign.Result
	// CampaignResults is the ordered result set, with WriteJSON and
	// WriteCSV emitters.
	CampaignResults = campaign.Results
)

// RunCampaign executes the sweep and returns one result row per grid
// point in deterministic order, independent of worker count.
func RunCampaign(c Campaign) CampaignResults { return campaign.Run(c) }

// RunCampaignContext is RunCampaign with cancellation: when ctx is
// cancelled no new grid points start, in-flight simulations finish,
// and the call returns the partial results along with ctx's error.
// The Campaign's Progress callback fires monotonically throughout.
func RunCampaignContext(ctx context.Context, c Campaign) (CampaignResults, error) {
	return campaign.RunContext(ctx, c)
}

// CampaignSeeds returns n consecutive seeds starting at base — the
// "average over seeded repetitions" axis.
func CampaignSeeds(base int64, n int) []int64 { return campaign.Seeds(base, n) }

// NamedCampaignWorkload returns the standard traffic pattern for a
// workload kind ("download", "upload", "mixed") — the vocabulary
// scenario registry entries use (see ScenarioWorkload).
func NamedCampaignWorkload(kind string) (func(n *Network, pt CampaignPoint), error) {
	return campaign.NamedWorkload(kind)
}

// Results subsystem: aggregation, baselines, regression detection.
type (
	// ResultsTable is a typed results table built from campaign rows
	// (or re-loaded from the CSV/JSON emitters' output), ready for
	// group-by aggregation.
	ResultsTable = results.Table
	// ResultsAgg is a grouped aggregation of a ResultsTable.
	ResultsAgg = results.Agg
	// ResultsGroup is one aggregation cell (a group key and a
	// statistical summary per metric).
	ResultsGroup = results.Group
	// ResultsStat summarizes one metric within one group.
	ResultsStat = results.Stat
	// Baseline is a persisted aggregation used as a regression
	// reference.
	Baseline = results.Baseline
	// Tolerance bounds one metric's allowed movement in its worse
	// direction before CompareBaseline flags a regression.
	Tolerance = results.Tolerance
	// Comparison is the outcome of CompareBaseline.
	Comparison = results.Comparison
)

// NewResultsTable builds a ResultsTable from campaign rows.
func NewResultsTable(rs CampaignResults) *ResultsTable { return results.FromResults(rs) }

// Results-layer helpers, re-exported for CLIs and scripts: CSV/JSON
// table loaders, the canonical numeric axis-value formatter, the
// metric/axis schema, baseline persistence, the default per-metric
// tolerances, and the comparison engine.
var (
	ReadResultsCSV       = results.ReadCSV
	ReadResultsJSON      = results.ReadJSON
	ResultsNum           = results.Num
	ResultsAxisColumns   = results.AxisColumns
	ResultsScalarMetrics = results.ScalarMetrics
	NewBaseline          = results.NewBaseline
	SaveBaselineFile     = results.SaveBaselineFile
	LoadBaselineFile     = results.LoadBaselineFile
	DefaultTolerances    = results.DefaultTolerances
	CompareBaseline      = results.Compare
)

// HACK modes.
const (
	ModeOff           = hack.ModeOff
	ModeMoreData      = hack.ModeMoreData
	ModeOpportunistic = hack.ModeOpportunistic
	ModeTimer         = hack.ModeTimer
)

// Time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewNetwork assembles a network from cfg.
func NewNetwork(cfg NetworkConfig) *Network { return node.New(cfg) }

// ParseMode resolves a HACK mode by its command-line name
// ("off", "more-data", "opportunistic", "timer").
func ParseMode(s string) (Mode, error) { return hack.ParseMode(s) }

// ParseRateAdapter validates a rate-adapter spec ("fixed",
// "fixed:<rate>", "ideal", "minstrel") — the string WithRateAdapter
// and CampaignAxes.Adapters accept. CLIs call it to reject bad specs
// before network construction (which panics on them).
func ParseRateAdapter(s string) error {
	_, err := mac.ParseAdapterSpec(s)
	return err
}

// Rate54Mbps is the top 802.11a rate (the SoRa testbed's setting).
var Rate54Mbps = phy.RateA54

// HTRate returns the 802.11n rate for an MCS index (0–7) and spatial
// stream count (1–4) at 40 MHz / 400 ns GI; HTRate(7, 1) is the
// paper's 150 Mbps configuration.
func HTRate(mcs, streams int) Rate { return phy.HTRate(mcs, streams) }

// ParseNamedRate resolves a PHY rate by its command-line name ("a6"
// through "a54", "mcs0" through "mcs7", "mcs<i>x<streams>").
func ParseNamedRate(s string) (Rate, error) { return phy.ParseRate(s) }

// Regression directions for Tolerance.Worse: goodput-like metrics
// regress downward, error counters upward.
const (
	LowerIsWorse  = results.LowerIsWorse
	HigherIsWorse = results.HigherIsWorse
)

// Scenario80211n builds the paper's §4.3 simulation scenario — a thin
// wrapper over NewScenario(With80211n(), ...).
func Scenario80211n(mode Mode, clients int) NetworkConfig {
	return NewScenario(With80211n(), WithMode(mode), WithClients(clients))
}

// ScenarioSoRa builds the paper's §4.1 testbed model — a thin wrapper
// over NewScenario(WithSoRa(), ...).
func ScenarioSoRa(mode Mode, clients int) NetworkConfig {
	return NewScenario(WithSoRa(), WithMode(mode), WithClients(clients))
}

// Experiment runners (one per table/figure in the paper), each
// executing its scenario grid as a parallel campaign.
var (
	Fig1a           = experiments.Fig1a
	Fig1b           = experiments.Fig1b
	Fig9            = experiments.Fig9
	Fig10           = experiments.Fig10
	Fig11           = experiments.Fig11
	Fig11Adaptive   = experiments.Fig11Adaptive
	Fig11Envelope   = experiments.Fig11Envelope
	Fig12           = experiments.Fig12
	Table2          = experiments.Table2
	Table3          = experiments.Table3
	CrossValidation = experiments.CrossValidation
	// LossResilience runs the loss × mode × adapter grid that
	// exercises the HACK recovery state machine under uniform frame
	// loss (every cell must report zero ROHC decompression failures).
	LossResilience = experiments.LossResilience
)

// LossResilienceRow is one cell of the loss-resilience grid.
type LossResilienceRow = experiments.LossResilienceRow

// AnalyticalDefaults returns the paper's capacity-model parameters.
func AnalyticalDefaults() AnalyticalParams { return analytical.Defaults() }

// Observability: flight-recorder tracing and the airtime ledger
// (internal/trace). A Tracer attached via WithTracer (or
// NetworkConfig.Tracer / Campaign.Trace) observes every layer of a
// simulation — PHY transmissions and collisions, MAC frame fates and
// NAV, HACK driver state transitions, ROHC packet forms, TCP loss
// events — without perturbing it: tracing is determinism-neutral by
// construction, and a nil tracer costs one pointer check per probe.
type (
	// Tracer receives simulation probe events (see internal/trace for
	// the full probe inventory). Implementations must only observe —
	// never schedule events, consume simulation randomness, or mutate
	// protocol state.
	Tracer = trace.Tracer
	// NopTracer is the explicit do-nothing Tracer (zero allocations).
	NopTracer = trace.Nop
	// TraceEvent is one probe event in the flight-recorder schema.
	TraceEvent = trace.Event
	// TraceRecorder is a bounded in-memory ring of the most recent
	// trace events.
	TraceRecorder = trace.Recorder
	// TraceWriter streams trace events as JSONL to an io.Writer.
	TraceWriter = trace.Writer
	// AirtimeLedger is a Tracer that accounts every nanosecond of
	// medium time into per-station usage buckets.
	AirtimeLedger = trace.AirtimeLedger
	// AirtimeReport is a settled snapshot of an AirtimeLedger.
	AirtimeReport = trace.AirtimeReport
	// AirtimeBuckets splits airtime into data / wifi-ACK / BAR /
	// TCP-ACK / retry components.
	AirtimeBuckets = trace.Buckets
	// StationAirtime is one station's share of an AirtimeReport.
	StationAirtime = trace.StationAirtime
)

// WithTracer attaches a Tracer to every layer of the scenario's
// network (PHY/channel, MAC, HACK driver, ROHC, TCP).
var WithTracer = scenario.WithTracer

// NewTraceRecorder returns a flight recorder retaining the most
// recent capacity events (DefaultTraceRecorderCap when capacity <= 0).
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.NewRecorder(capacity) }

// DefaultTraceRecorderCap is the default flight-recorder ring size.
const DefaultTraceRecorderCap = trace.DefaultRecorderCap

// NewTraceWriter returns a Tracer that streams every event to w as
// JSONL; call Close to flush (and close w if it is an io.Closer).
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// NewAirtimeLedger returns an airtime-accounting Tracer; attach it
// with WithTracer and call Snapshot at the end of the run.
func NewAirtimeLedger() *AirtimeLedger { return trace.NewAirtimeLedger() }

// TraceMulti fans probe events out to several tracers (nils are
// dropped; returns nil when none remain).
func TraceMulti(trs ...Tracer) Tracer { return trace.Multi(trs...) }

// ValidateTraceJSONL schema-checks a JSONL trace stream and returns
// the number of events read.
func ValidateTraceJSONL(r io.Reader) (int, error) { return trace.ValidateJSONL(r) }
