// Package tcphack is a from-scratch reproduction of "HACK:
// Hierarchical ACKs for Efficient Wireless Medium Utilization"
// (Salameh, Zhushi, Handley, Jamieson, Karp — USENIX ATC 2014):
// TCP/HACK carries compressed TCP acknowledgments inside 802.11
// link-layer acknowledgments, eliminating the medium acquisitions that
// TCP ACK packets otherwise require.
//
// The package is the public facade over the full system:
//
//   - a deterministic discrete-event 802.11a/n simulator
//     (internal/sim, internal/phy, internal/channel, internal/mac);
//   - a standards-shaped TCP stack (internal/tcp) and real IPv4/TCP
//     wire formats (internal/packet);
//   - ROHC-style TCP ACK compression (internal/rohc);
//   - the HACK driver itself (internal/hack) with the MORE DATA,
//     opportunistic, and timer holding policies;
//   - network composition (internal/node), closed-form capacity models
//     (internal/analytical), and runners for every table and figure in
//     the paper's evaluation (internal/experiments).
//
// Quick start: build a network, start a flow, measure.
//
//	cfg := tcphack.Scenario80211n(tcphack.ModeMoreData, 1)
//	n := tcphack.NewNetwork(cfg)
//	flow := n.StartDownload(0, 0, 0)
//	n.Run(2 * tcphack.Second)
//	flow.Goodput.MarkWindow(n.Sched.Now())
//	n.Run(8 * tcphack.Second)
//	fmt.Printf("%.1f Mbps\n", flow.Goodput.WindowMbps(n.Sched.Now()))
package tcphack

import (
	"tcphack/internal/analytical"
	"tcphack/internal/experiments"
	"tcphack/internal/hack"
	"tcphack/internal/node"
	"tcphack/internal/phy"
	"tcphack/internal/sim"
)

// Re-exported core types.
type (
	// NetworkConfig parameterizes a simulated WLAN (see node.Config).
	NetworkConfig = node.Config
	// Network is an assembled simulation.
	Network = node.Network
	// Flow is one TCP transfer with measurement hooks.
	Flow = node.Flow
	// Mode selects the HACK ACK-holding policy.
	Mode = hack.Mode
	// Rate is an 802.11 PHY rate.
	Rate = phy.Rate
	// Duration is simulated time in nanoseconds.
	Duration = sim.Duration
	// ExperimentOptions scales the paper-reproduction runners.
	ExperimentOptions = experiments.Options
	// AnalyticalParams parameterizes the closed-form capacity models.
	AnalyticalParams = analytical.Params
)

// HACK modes.
const (
	ModeOff           = hack.ModeOff
	ModeMoreData      = hack.ModeMoreData
	ModeOpportunistic = hack.ModeOpportunistic
	ModeTimer         = hack.ModeTimer
)

// Time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewNetwork assembles a network from cfg.
func NewNetwork(cfg NetworkConfig) *Network { return node.New(cfg) }

// Rate54Mbps is the top 802.11a rate (the SoRa testbed's setting).
var Rate54Mbps = phy.RateA54

// HTRate returns the 802.11n rate for an MCS index (0–7) and spatial
// stream count (1–4) at 40 MHz / 400 ns GI; HTRate(7, 1) is the
// paper's 150 Mbps configuration.
func HTRate(mcs, streams int) Rate { return phy.HTRate(mcs, streams) }

// Scenario80211n builds the paper's §4.3 simulation scenario:
// 150 Mbps 802.11n with A-MPDU aggregation, 24 Mbps link-layer ACKs,
// a 4 ms TXOP limit, and a 500 Mbps / 1 ms wired backhaul.
func Scenario80211n(mode Mode, clients int) NetworkConfig {
	return NetworkConfig{
		Seed:         1,
		Mode:         mode,
		DataRate:     phy.HTRate(7, 1),
		AckRate:      phy.RateA24,
		Aggregation:  true,
		TXOPLimit:    4 * sim.Millisecond,
		Clients:      clients,
		APQueueLimit: 126,
		WireRateKbps: 500_000,
		WireDelay:    sim.Millisecond,
	}
}

// ScenarioSoRa builds the paper's §4.1 testbed model: 802.11a at
// 54 Mbps, the AP as TCP sender (ad-hoc mode), and SoRa's 37 µs late
// link-layer ACKs with a widened ACK timeout.
func ScenarioSoRa(mode Mode, clients int) NetworkConfig {
	return NetworkConfig{
		Seed:            1,
		Mode:            mode,
		DataRate:        phy.RateA54,
		Clients:         clients,
		AckTurnaround:   37 * sim.Microsecond,
		AckTimeoutSlack: 80 * sim.Microsecond,
		APQueueLimit:    126,
	}
}

// Experiment runners (one per table/figure in the paper).
var (
	Fig1a           = experiments.Fig1a
	Fig1b           = experiments.Fig1b
	Fig9            = experiments.Fig9
	Fig10           = experiments.Fig10
	Fig11           = experiments.Fig11
	Fig12           = experiments.Fig12
	Table2          = experiments.Table2
	Table3          = experiments.Table3
	CrossValidation = experiments.CrossValidation
)

// AnalyticalDefaults returns the paper's capacity-model parameters.
func AnalyticalDefaults() AnalyticalParams { return analytical.Defaults() }
