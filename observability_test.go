// Observability contract tests: attaching a tracer must not perturb a
// simulation (determinism neutrality), and the airtime ledger must
// account for every nanosecond of simulated time (conservation).
package tcphack

import (
	"bytes"
	"testing"
)

// observabilityCampaign is the grid both determinism tests run: both
// HACK modes over a lossless and a lossy channel, so the traced run
// exercises retries, BAR recovery, and the resync state machine — the
// probe-densest paths — not just the happy path.
func observabilityCampaign() Campaign {
	return Campaign{
		Name: "obs",
		Base: NewScenario(With80211n()),
		Axes: CampaignAxes{
			Modes: []Mode{ModeOff, ModeMoreData},
			Loss:  []float64{0, 0.05},
		},
		Warmup:  500 * Millisecond,
		Measure: 500 * Millisecond,
		Workers: 1,
	}
}

// TestTracerDeterminismNeutral runs the same campaign bare and with a
// flight recorder attached to every grid point, and requires the
// emitted result rows to be byte-identical: tracing observes the
// simulation, it never steers it (no RNG draws, no scheduled events,
// no state mutation). The recorder must also have seen a substantial
// event stream, so a silently detached tracer cannot pass.
func TestTracerDeterminismNeutral(t *testing.T) {
	var bare bytes.Buffer
	if err := RunCampaign(observabilityCampaign()).WriteJSON(&bare); err != nil {
		t.Fatal(err)
	}

	var recorders []*TraceRecorder
	spec := observabilityCampaign()
	spec.Trace = func(pt CampaignPoint) Tracer {
		r := NewTraceRecorder(0)
		recorders = append(recorders, r)
		return r
	}
	var traced bytes.Buffer
	if err := RunCampaign(spec).WriteJSON(&traced); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(bare.Bytes(), traced.Bytes()) {
		t.Errorf("attaching a trace recorder changed the campaign results:\nbare:   %d bytes\ntraced: %d bytes",
			bare.Len(), traced.Len())
	}
	if len(recorders) != 4 {
		t.Fatalf("%d recorders, want one per grid point (4)", len(recorders))
	}
	for i, r := range recorders {
		if r.Total() == 0 {
			t.Errorf("recorder %d saw no events", i)
		}
	}
}

// TestAirtimeLedgerDeterminismNeutral repeats the byte-identity check
// with the airtime ledger as the attached tracer — the ledger does
// bookkeeping on every TxStart/TxEnd, so it is the heaviest shipped
// tracer — comparing only the rows, since Airtime mode legitimately
// adds Extra columns.
func TestAirtimeLedgerDeterminismNeutral(t *testing.T) {
	bare := RunCampaign(observabilityCampaign())

	spec := observabilityCampaign()
	spec.Airtime = true
	traced := RunCampaign(spec)

	if len(bare) != len(traced) {
		t.Fatalf("row counts differ: %d vs %d", len(bare), len(traced))
	}
	for i := range bare {
		b, tr := bare[i], traced[i]
		if _, ok := tr.Extra["airtime_efficiency"]; !ok {
			t.Errorf("row %d: Airtime mode emitted no airtime_efficiency column", i)
		}
		tr.Extra = nil // the ledger's own output — the only allowed delta
		b.Extra = nil
		if !resultsEqual(b, tr) {
			t.Errorf("row %d differs with the airtime ledger attached:\nbare:   %+v\ntraced: %+v", i, b, tr)
		}
	}
}

// resultsEqual compares two campaign rows field-by-field through their
// JSON forms (Result holds a slice, so == does not apply).
func resultsEqual(a, b CampaignResult) bool {
	var ab, bb bytes.Buffer
	if err := (CampaignResults{a}).WriteJSON(&ab); err != nil {
		return false
	}
	if err := (CampaignResults{b}).WriteJSON(&bb); err != nil {
		return false
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}

// TestAirtimeConservation attaches the ledger to a single simulation —
// lossless and lossy — and requires every nanosecond to be accounted:
// busy + idle == elapsed exactly, with the busy total agreeing with
// the medium's own AirtimeBusy counter.
func TestAirtimeConservation(t *testing.T) {
	for _, loss := range []float64{0, 0.05} {
		ledger := NewAirtimeLedger()
		opts := []ScenarioOption{
			With80211n(), WithMode(ModeMoreData), WithClients(2), WithTracer(ledger),
		}
		if loss > 0 {
			opts = append(opts, WithUniformLoss(loss))
		}
		n := NewNetwork(NewScenario(opts...))
		for ci := 0; ci < 2; ci++ {
			n.StartDownload(ci, 0, 0)
		}
		n.Run(2 * Second)

		now := n.Sched.Now()
		rep := ledger.Snapshot(now)
		if Duration(rep.Elapsed) != Duration(now) {
			t.Errorf("loss=%g: elapsed %d != sim time %d", loss, rep.Elapsed, now)
		}
		if !rep.Conserved() {
			t.Errorf("loss=%g: conservation violated: busy %d + idle %d != elapsed %d",
				loss, rep.Busy(), rep.Idle, rep.Elapsed)
		}
		// The settled buckets must agree with the medium's own busy-time
		// counter; a transmission still in the air at the cut accrues in
		// the snapshot before the medium books it.
		busy, medium := rep.Busy(), Duration(n.Medium.AirtimeBusy)
		if ledger.InFlight() == 0 {
			if busy != medium {
				t.Errorf("loss=%g: ledger busy %d != medium AirtimeBusy %d", loss, busy, medium)
			}
		} else if busy < medium {
			t.Errorf("loss=%g: ledger busy %d < medium AirtimeBusy %d with %d tx in flight",
				loss, busy, medium, ledger.InFlight())
		}
		if rep.Total.Data == 0 {
			t.Errorf("loss=%g: no data airtime attributed", loss)
		}
		if eff := rep.Efficiency(); eff <= 0 || eff > 1 {
			t.Errorf("loss=%g: efficiency %v out of (0, 1]", loss, eff)
		}
	}
}
